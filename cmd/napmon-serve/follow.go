package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"napmon"
)

// follower replicates a leader daemon: it mirrors the leader's tenant
// set, warm-starts each tenant from a compact snapshot (frozen at the
// leader's epoch) and then polls /deltas, applying each epoch delta in
// order so the local monitors converge bit-for-bit with the leader's.
// A follower that falls behind the leader's bounded delta log (410 on
// /deltas) drops the stale tenant and re-syncs from a fresh snapshot.
type follower struct {
	d    *daemon
	base string // leader base URL, e.g. http://127.0.0.1:8080
	poll time.Duration

	// incs records, per tenant name, the leader incarnation the local
	// replica was synced from. A reload on the leader (DELETE+PUT
	// between polls) restarts the name at a new incarnation whose epochs
	// begin below the replica's, so every later DeltasSince poll would
	// come back empty forever — no 410, no error, just a silently stale
	// replica. Comparing incarnations turns that into a drop-and-resync.
	// Only the bootstrap and run goroutine touch it (sequentially).
	incs map[string]uint64

	// timeout bounds every leader request end to end (dial through body
	// read). A zero-value http.Client has NO timeout, so a leader socket
	// that accepts and then hangs used to stall bootstrap and the whole
	// replication loop forever with no log line; now the hung request
	// fails within the deadline, run logs it, and the next tick retries.
	timeout time.Duration
	client  http.Client

	// sleep paces the replication loop (sleepCtx in production); tests
	// inject a recorder to pin backoff sequences without wall time.
	sleep func(ctx context.Context, d time.Duration) bool
}

// newFollower wires a follower for one leader. The request deadline is
// derived from the poll cadence — generous enough for a snapshot fetch
// (many polls' worth), short enough that a hung leader surfaces as a
// logged error within seconds rather than a silent stall.
func newFollower(d *daemon, base string, poll time.Duration) *follower {
	timeout := 10 * poll
	if timeout < 5*time.Second {
		timeout = 5 * time.Second
	}
	f := &follower{d: d, base: base, poll: poll, timeout: timeout, incs: map[string]uint64{}, sleep: sleepCtx}
	// Belt and suspenders: the per-request context deadline in get is
	// the primary bound; Client.Timeout catches any future call path
	// that forgets to derive one.
	f.client.Timeout = timeout
	return f
}

// bootstrapRetry keeps attempting bootstrap under backoff until it
// succeeds, ctx ends, or the budget elapses. A follower started into a
// leader's bad minute — restarting, flapping, or behind an injected
// fault schedule — should come up once the leader does, not die on the
// first refused connection.
func (f *follower) bootstrapRetry(ctx context.Context, budget time.Duration) error {
	bo := newBackoff(f.poll)
	deadline := time.Now().Add(budget)
	for {
		err := f.bootstrap(ctx)
		if err == nil {
			return nil
		}
		bo.failure()
		if ctx.Err() != nil || time.Now().After(deadline) {
			return err
		}
		log.Printf("follow: bootstrap: %v (retrying)", err)
		if !f.sleep(ctx, bo.next()) {
			return err
		}
	}
}

// bootstrap mirrors the leader's current tenant set before the local
// listener opens, so the follower never serves an empty fleet to the
// first request.
func (f *follower) bootstrap(ctx context.Context) error {
	names, err := f.leaderModels(ctx)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("leader serves no models")
	}
	for _, m := range names {
		if err := f.syncTenant(ctx, m); err != nil {
			return fmt.Errorf("tenant %q: %v", m.Name, err)
		}
	}
	return nil
}

// run is the replication loop: it reconciles the local tenant set
// against the leader's and pulls pending deltas, pacing itself with
// failure-aware backoff — the healthy cadence is f.poll, a failing
// leader widens the gap exponentially (full jitter, capped at ≈30×
// poll), and the first successful poll snaps back to f.poll.
func (f *follower) run(ctx context.Context) {
	bo := newBackoff(f.poll)
	for {
		if !f.sleep(ctx, bo.next()) {
			return
		}
		if f.pollOnce(ctx) {
			bo.success()
		} else {
			bo.failure()
		}
	}
}

// pollOnce performs one reconcile pass and reports whether the leader
// fully answered — any listing or per-tenant sync failure counts
// against it for backoff purposes.
func (f *follower) pollOnce(ctx context.Context) bool {
	models, err := f.leaderModels(ctx)
	if err != nil {
		log.Printf("follow: list models: %v", err)
		return false
	}
	ok := true
	seen := make(map[string]bool, len(models))
	for _, m := range models {
		seen[m.Name] = true
		if err := f.syncTenant(ctx, m); err != nil {
			log.Printf("follow: tenant %q: %v", m.Name, err)
			ok = false
		}
	}
	// Tenants the leader unloaded disappear here too.
	for _, name := range f.d.reg.Names() {
		if !seen[name] {
			if err := f.d.reg.Unload(ctx, name); err == nil {
				f.d.deleteShape(name)
				delete(f.incs, name)
				log.Printf("follow: unloaded %q (gone from leader)", name)
			}
		}
	}
	return ok
}

func (f *follower) leaderModels(ctx context.Context) ([]modelInfo, error) {
	body, err := f.get(ctx, "/v1/models")
	if err != nil {
		return nil, err
	}
	var out struct {
		Models []modelInfo `json:"models"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("parse model list: %v", err)
	}
	return out.Models, nil
}

// syncTenant brings one tenant up to the leader's epoch: a snapshot
// load if the tenant is new locally, a drop-and-resync if the leader
// reloaded the name since the last sync, otherwise a delta pull.
func (f *follower) syncTenant(ctx context.Context, m modelInfo) error {
	t, err := f.d.reg.Acquire(m.Name)
	if err != nil {
		return f.loadFromSnapshot(ctx, m)
	}
	// A new leader incarnation (or a leader epoch behind the local one —
	// the same symptom when the leader predates incarnation reporting)
	// means the replica's epochs no longer speak about the model the
	// leader serves; deltas would never arrive. Re-bootstrap.
	if f.incs[m.Name] != m.Incarnation || m.Epoch < t.Monitor().Epoch() {
		t.Release()
		log.Printf("follow: leader reloaded %q (incarnation %d -> %d); re-syncing from snapshot",
			m.Name, f.incs[m.Name], m.Incarnation)
		if err := f.dropTenant(ctx, m.Name); err != nil {
			return err
		}
		return f.loadFromSnapshot(ctx, m)
	}
	defer t.Release()
	return f.pullDeltas(ctx, t, m.Name)
}

// dropTenant discards a stale local replica so the next poll (or this
// one's caller) re-bootstraps it from a fresh leader snapshot.
func (f *follower) dropTenant(ctx context.Context, name string) error {
	if err := f.d.reg.Unload(ctx, name); err != nil {
		return err
	}
	f.d.deleteShape(name)
	delete(f.incs, name)
	return nil
}

// loadFromSnapshot bootstraps a tenant: model weights, then the compact
// monitor snapshot, loaded frozen at the leader's epoch.
func (f *follower) loadFromSnapshot(ctx context.Context, m modelInfo) error {
	modelBytes, err := f.get(ctx, "/v1/models/"+m.Name+"/model")
	if err != nil {
		return err
	}
	net, err := napmon.LoadModel(bytes.NewReader(modelBytes))
	if err != nil {
		return fmt.Errorf("parse model: %v", err)
	}
	snapBytes, err := f.get(ctx, "/v1/models/"+m.Name+"/snapshot")
	if err != nil {
		return err
	}
	sc := f.d.serveCfg
	sc.InputShape = m.Shape
	// Shape gate first: the tenant is acquirable the moment LoadSnapshot
	// publishes it, and a watch landing in that window must validate
	// against this incarnation's shape.
	prev, had := f.d.swapShape(m.Name, m.Shape)
	t, err := f.d.reg.LoadSnapshot(m.Name, net, bytes.NewReader(snapBytes), sc)
	if err != nil {
		f.d.undoShape(m.Name, prev, had)
		return fmt.Errorf("load snapshot: %v", err)
	}
	f.incs[m.Name] = m.Incarnation
	log.Printf("follow: loaded %q from snapshot at epoch %d (leader incarnation %d)",
		m.Name, t.Monitor().Epoch(), m.Incarnation)
	return nil
}

// pullDeltas fetches and applies every epoch delta the leader published
// past the follower's current epoch. A 410 means the leader's bounded
// log evicted entries the follower still needs: the only way back to
// convergence is a fresh snapshot, so the stale tenant is dropped and
// the next poll re-bootstraps it.
func (f *follower) pullDeltas(ctx context.Context, t *napmon.Tenant, name string) error {
	since := t.Monitor().Epoch()
	stream, err := f.get(ctx, fmt.Sprintf("/v1/models/%s/deltas?since=%d", name, since))
	if err != nil {
		if isGone(err) {
			log.Printf("follow: %q fell behind the leader's delta log; re-syncing from snapshot", name)
			return f.dropTenant(ctx, name)
		}
		return err
	}
	entries, err := napmon.DecodeDeltaStream(stream, len(t.Monitor().Neurons()))
	if err != nil {
		return fmt.Errorf("parse delta stream: %v", err)
	}
	for _, e := range entries {
		if err := t.ApplyDelta(e); err != nil {
			return fmt.Errorf("apply epoch %d: %v", e.Epoch, err)
		}
	}
	if len(entries) > 0 {
		log.Printf("follow: %q applied %d deltas, now at epoch %d", name, len(entries), t.Monitor().Epoch())
	}
	return nil
}

// goneError marks a 410 response so pullDeltas can tell "re-snapshot"
// apart from transient failures.
type goneError struct{ url string }

func (e *goneError) Error() string { return "410 gone: " + e.url }

func isGone(err error) bool {
	_, ok := err.(*goneError)
	return ok
}

// get fetches one leader path. Every request carries a deadline derived
// from the poll interval AND honors the caller's ctx — cancelling the
// replication loop (SIGTERM) aborts an in-flight snapshot or delta
// fetch immediately, including the body read below, which runs under
// the same request context.
func (f *follower) get(ctx context.Context, path string) ([]byte, error) {
	if f.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, f.timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusGone {
		return nil, &goneError{url: path}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", path, resp.Status, firstLine(body))
	}
	return body, nil
}

func firstLine(b []byte) string {
	for i, c := range b {
		if c == '\n' {
			return string(b[:i])
		}
	}
	return string(b)
}
