package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"slices"
	"strconv"
	"sync"
	"time"

	"napmon"
	"napmon/internal/exp"
	"napmon/internal/obs"
)

// daemon is the HTTP face of one fleet registry: route wiring, the
// per-tenant shape gate, and the leader/follower mode switch.
type daemon struct {
	reg      *napmon.Registry
	obsReg   *obs.Registry
	follower bool
	serveCfg napmon.ServerConfig // flag-level knobs applied to every tenant

	mu     sync.Mutex
	shapes map[string][]int // tenant name → expected input shape
}

func (d *daemon) setShape(name string, shape []int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.shapes[name] = shape
}

// swapShape installs a shape and returns what it replaced, so a load
// path can register the gate BEFORE the tenant becomes acquirable (a
// watch racing the load must validate against this load's shape, not
// nil or a previous incarnation's) and still restore on load failure.
func (d *daemon) swapShape(name string, shape []int) (prev []int, had bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	prev, had = d.shapes[name]
	d.shapes[name] = shape
	return prev, had
}

func (d *daemon) deleteShape(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.shapes, name)
}

// undoShape reverts a swapShape after a failed load.
func (d *daemon) undoShape(name string, prev []int, had bool) {
	if had {
		d.setShape(name, prev)
	} else {
		d.deleteShape(name)
	}
}

func (d *daemon) shape(name string) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.shapes[name]
}

// routes builds the daemon mux: the tenant-scoped /v1 API plus the
// legacy unprefixed aliases for the default tenant.
func (d *daemon) routes(pprofOn bool) *http.ServeMux {
	mux := http.NewServeMux()
	byPath := func(r *http.Request) string { return r.PathValue("name") }
	asDefault := func(*http.Request) string { return napmon.DefaultTenant }

	mux.HandleFunc("POST /v1/models/{name}/watch", d.handleWatch(byPath))
	mux.HandleFunc("POST /v1/models/{name}/learn", d.handleLearn(byPath))
	mux.HandleFunc("GET /v1/models/{name}/stats", d.handleStats(byPath))
	mux.HandleFunc("GET /v1/models", d.handleList)
	mux.HandleFunc("PUT /v1/models/{name}", d.handleLoad)
	mux.HandleFunc("DELETE /v1/models/{name}", d.handleUnload)
	mux.HandleFunc("GET /v1/models/{name}/snapshot", d.handleSnapshot)
	mux.HandleFunc("GET /v1/models/{name}/deltas", d.handleDeltas)
	mux.HandleFunc("GET /v1/models/{name}/model", d.handleModel)

	// Legacy aliases: the pre-fleet single-tenant API keeps working
	// against the default tenant, answering with a Deprecation header
	// (RFC 9745) that points clients at the /v1 successor route.
	mux.HandleFunc("POST /watch", deprecated("/v1/models/default/watch", d.handleWatch(asDefault)))
	mux.HandleFunc("POST /learn", deprecated("/v1/models/default/learn", d.handleLearn(asDefault)))
	mux.HandleFunc("GET /stats", deprecated("/v1/models/default/stats", d.handleStats(asDefault)))

	mux.Handle("GET /metrics", d.obsReg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func deprecated(successor string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "@1754600000") // the /v1 API shipped
		w.Header().Set("Link", "<"+successor+">; rel=\"successor-version\"")
		next(w, r)
	}
}

// acquire pins the named tenant for the duration of one request,
// answering 404 itself when the tenant is not loaded. Callers must
// Release the returned tenant.
func (d *daemon) acquire(w http.ResponseWriter, name string) *napmon.Tenant {
	t, err := d.reg.Acquire(name)
	if err != nil {
		status := http.StatusNotFound
		if errors.Is(err, napmon.ErrRegistryClosed) {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, fmt.Sprintf("model %q: %v", name, err), status)
		return nil
	}
	return t
}

// readOnly rejects mutating requests in follower mode: a follower's
// monitors advance only by replicated leader deltas, so accepting local
// writes would fork the replica.
func (d *daemon) readOnly(w http.ResponseWriter) bool {
	if d.follower {
		http.Error(w, "read-only replication follower; write to the leader", http.StatusConflict)
	}
	return d.follower
}

// watchRequest is the watch body: a flat row-major input plus its
// tensor shape (e.g. [1,28,28] for the MNIST-like network).
type watchRequest struct {
	Shape []int     `json:"shape"`
	Input []float64 `json:"input"`
}

// watchResponse mirrors napmon.Verdict for JSON consumers.
type watchResponse struct {
	Class        int    `json:"class"`
	Monitored    bool   `json:"monitored"`
	OutOfPattern bool   `json:"out_of_pattern"`
	Pattern      string `json:"pattern"`
}

func (d *daemon) handleWatch(tenant func(*http.Request) string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := tenant(r)
		t := d.acquire(w, name)
		if t == nil {
			return
		}
		defer t.Release()
		shape := d.shape(name)
		want := 1
		for _, dim := range shape {
			want *= dim
		}
		// Cap the body before decoding: without a limit, one oversized
		// request allocates its whole float array (and can OOM the
		// daemon) before the element-count check below ever runs. ~25
		// bytes per JSON float is generous; 4 KiB covers the envelope.
		r.Body = http.MaxBytesReader(w, r.Body, int64(want)*25+4096)
		var req watchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		// Check against the model's expected shape before building the
		// tensor: TensorFromSlice panics on a shape/len mismatch, and
		// shapes other than the model's would panic inside inference.
		if !slices.Equal(req.Shape, shape) {
			http.Error(w, fmt.Sprintf("input shape %v, model %q expects %v", req.Shape, name, shape), http.StatusBadRequest)
			return
		}
		if len(req.Input) != want {
			http.Error(w, fmt.Sprintf("shape %v needs %d input values, got %d", req.Shape, want, len(req.Input)), http.StatusBadRequest)
			return
		}
		// The HTTP request context rides into the pipeline: a client that
		// hangs up (or whose deadline fires) while its request is queued
		// is shed before inference instead of inferred into the void.
		fut, err := t.Server().SubmitCtx(r.Context(), napmon.TensorFromSlice(req.Input, req.Shape...))
		if err != nil {
			status := http.StatusBadRequest
			switch {
			case errors.Is(err, napmon.ErrServerClosed):
				status = http.StatusServiceUnavailable
			case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
				// 499-style: the client is gone; the write likely goes
				// nowhere, but the status keeps logs honest.
				status = http.StatusRequestTimeout
			}
			http.Error(w, err.Error(), status)
			return
		}
		v, err := fut.Wait()
		if err != nil {
			status := http.StatusServiceUnavailable
			if errors.Is(err, napmon.ErrExpired) {
				status = http.StatusRequestTimeout
			}
			http.Error(w, err.Error(), status)
			return
		}
		writeJSON(w, watchResponse{
			Class:        v.Class,
			Monitored:    v.Monitored,
			OutOfPattern: v.OutOfPattern,
			Pattern:      v.Pattern.String(),
		})
	}
}

// learnRequest is the learn body: activation patterns (the 0/1 string
// form returned by watch) to absorb into one class's comfort zone.
type learnRequest struct {
	Class    int      `json:"class"`
	Patterns []string `json:"patterns"`
}

// learnResponse reports the published epoch after the update.
type learnResponse struct {
	Epoch    uint64 `json:"epoch"`
	Absorbed int    `json:"absorbed"`
}

func (d *daemon) handleLearn(tenant func(*http.Request) string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if d.readOnly(w) {
			return
		}
		t := d.acquire(w, tenant(r))
		if t == nil {
			return
		}
		defer t.Release()
		width := len(t.Monitor().Neurons())
		// Each pattern is width bytes of JSON string plus quoting; the cap
		// bounds one request to a generous batch without letting a rogue
		// client allocate unbounded pattern slices.
		r.Body = http.MaxBytesReader(w, r.Body, int64(width+16)*4096+4096)
		var req learnRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(req.Patterns) == 0 {
			http.Error(w, "no patterns", http.StatusBadRequest)
			return
		}
		pats := make([]napmon.Pattern, len(req.Patterns))
		for i, s := range req.Patterns {
			p, err := napmon.ParsePattern(s)
			if err != nil {
				http.Error(w, fmt.Sprintf("pattern %d: %v", i, err), http.StatusBadRequest)
				return
			}
			if len(p) != width {
				http.Error(w, fmt.Sprintf("pattern %d has %d bits, monitor watches %d neurons", i, len(p), width), http.StatusBadRequest)
				return
			}
			pats[i] = p
		}
		// Tenant.Learn (not Server.Update) so the published epoch also
		// lands in the tenant's delta log for replication followers.
		epoch, err := t.Learn(map[int][]napmon.Pattern{req.Class: pats})
		if err != nil {
			// Validation failures (unmonitored class) are the client's
			// fault; the update path has no server-side failure modes.
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, learnResponse{Epoch: epoch, Absorbed: len(pats)})
	}
}

// statsResponse renders napmon.ServerStats with latencies both raw (ns)
// and human-readable, plus the per-stage breakdown, the monitor's
// verdict tallies and the fleet dimension (which tenant, fleet size).
type statsResponse struct {
	Tenant        string                `json:"tenant"`
	TenantID      uint32                `json:"tenant_id"`
	Tenants       int                   `json:"tenants"`
	Queued        int                   `json:"queued"`
	Submitted     uint64                `json:"submitted"`
	Served        uint64                `json:"served"`
	Rejected      uint64                `json:"rejected"`
	Shed          uint64                `json:"shed"`
	Expired       uint64                `json:"expired"`
	Batches       uint64                `json:"batches"`
	MeanBatchSize float64               `json:"mean_batch_size"`
	P50Ns         int64                 `json:"p50_ns"`
	P99Ns         int64                 `json:"p99_ns"`
	P50           string                `json:"p50"`
	P99           string                `json:"p99"`
	Stages        map[string]stageStats `json:"stages"`
	Monitored     uint64                `json:"monitored"`
	OutOfPattern  uint64                `json:"out_of_pattern"`
	Unmonitored   uint64                `json:"unmonitored"`
	Gamma         int                   `json:"gamma"`
	Lanes         int                   `json:"lanes"`
	Epoch         uint64                `json:"epoch"`
	Updates       uint64                `json:"updates"`
	Recompiled    uint64                `json:"recompiled"`
}

// stageStats is one pipeline stage's latency summary in stats.
type stageStats struct {
	P50Ns int64  `json:"p50_ns"`
	P99Ns int64  `json:"p99_ns"`
	P50   string `json:"p50"`
	P99   string `json:"p99"`
	Count uint64 `json:"count"`
}

func (d *daemon) handleStats(tenant func(*http.Request) string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t := d.acquire(w, tenant(r))
		if t == nil {
			return
		}
		defer t.Release()
		st := t.Server().Stats()
		stages := make(map[string]stageStats, len(st.Stages))
		for name, sl := range st.Stages {
			stages[name] = stageStats{
				P50Ns: sl.P50.Nanoseconds(),
				P99Ns: sl.P99.Nanoseconds(),
				P50:   sl.P50.String(),
				P99:   sl.P99.String(),
				Count: sl.Count,
			}
		}
		writeJSON(w, statsResponse{
			Tenant:        t.Name(),
			TenantID:      t.ID(),
			Tenants:       d.reg.Len(),
			Queued:        st.Queued,
			Submitted:     st.Submitted,
			Served:        st.Served,
			Rejected:      st.Rejected,
			Shed:          st.Shed,
			Expired:       st.Expired,
			Batches:       st.Batches,
			MeanBatchSize: st.MeanBatchSize,
			P50Ns:         st.P50.Nanoseconds(),
			P99Ns:         st.P99.Nanoseconds(),
			P50:           st.P50.String(),
			P99:           st.P99.String(),
			Stages:        stages,
			Monitored:     st.Monitored,
			OutOfPattern:  st.OutOfPattern,
			Unmonitored:   st.Unmonitored,
			Gamma:         st.Gamma,
			Lanes:         st.Lanes,
			Epoch:         st.Epoch,
			Updates:       st.Updates,
			Recompiled:    st.Recompiled,
		})
	}
}

// modelInfo is one entry of the GET /v1/models list. Shape rides along
// so replication followers can mirror the leader's input gate;
// Incarnation identifies the load (it changes on a DELETE+PUT reload,
// where epochs restart) so a follower can tell "nothing new" apart from
// "the tenant I synced no longer exists" and re-snapshot.
type modelInfo struct {
	Name        string `json:"name"`
	ID          uint32 `json:"id"`
	Incarnation uint64 `json:"incarnation"`
	Epoch       uint64 `json:"epoch"`
	Gamma       int    `json:"gamma"`
	Served      uint64 `json:"served"`
	Updates     uint64 `json:"updates"`
	Shape       []int  `json:"shape,omitempty"`
}

func (d *daemon) handleList(w http.ResponseWriter, _ *http.Request) {
	names := d.reg.Names()
	out := make([]modelInfo, 0, len(names))
	for _, name := range names {
		t, err := d.reg.Acquire(name)
		if err != nil {
			continue // unloaded between Names and Acquire
		}
		st := t.Server().Stats()
		out = append(out, modelInfo{
			Name:        t.Name(),
			ID:          t.ID(),
			Incarnation: t.Incarnation(),
			Epoch:       st.Epoch,
			Gamma:       st.Gamma,
			Served:      st.Served,
			Updates:     st.Updates,
			Shape:       d.shape(name),
		})
		t.Release()
	}
	writeJSON(w, struct {
		Models []modelInfo `json:"models"`
	}{out})
}

// loadRequest is the PUT /v1/models/{name} body: either trained
// artifact paths on the daemon's filesystem or a selftrain scale, plus
// optional per-tenant serving knobs overriding the daemon flags.
type loadRequest struct {
	Model     string  `json:"model,omitempty"`     // model file (napmon-train -model)
	Monitor   string  `json:"monitor,omitempty"`   // monitor file (napmon-train -monitor)
	Selftrain float64 `json:"selftrain,omitempty"` // in-process training scale
	Dataset   string  `json:"dataset,omitempty"`   // mnist (default) or gtsrb
	Seed      uint64  `json:"seed,omitempty"`
	Gamma     int     `json:"gamma,omitempty"`
	Shape     []int   `json:"shape,omitempty"`
	MaxBatch  int     `json:"max_batch,omitempty"`
	Queue     int     `json:"queue,omitempty"`
	Lanes     int     `json:"lanes,omitempty"`
}

func (d *daemon) handleLoad(w http.ResponseWriter, r *http.Request) {
	if d.readOnly(w) {
		return
	}
	name := r.PathValue("name")
	r.Body = http.MaxBytesReader(w, r.Body, 1<<16)
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Dataset == "" {
		req.Dataset = "mnist"
	}
	if req.Gamma == 0 {
		req.Gamma = 2
	}
	shape := req.Shape
	if shape == nil {
		var err error
		if shape, err = exp.InputShape("", req.Dataset); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	start := time.Now()
	net, mon, err := exp.LoadOrTrain(req.Model, req.Monitor, req.Selftrain, req.Dataset, req.Seed, req.Gamma, log.Printf)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := exp.ProbeShape(net, shape); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sc := d.serveCfg
	sc.InputShape = shape
	if req.MaxBatch > 0 {
		sc.MaxBatch = req.MaxBatch
	}
	if req.Queue > 0 {
		sc.QueueDepth = req.Queue
	}
	if req.Lanes > 0 {
		sc.Lanes = req.Lanes
	}
	prev, had := d.swapShape(name, shape)
	t, err := d.reg.Load(name, napmon.TenantConfig{Net: net, Mon: mon, Serve: sc})
	if err != nil {
		d.undoShape(name, prev, had)
		status := http.StatusBadRequest
		if errors.Is(err, napmon.ErrTenantExists) {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	log.Printf("loaded tenant %q (id %d) in %v", name, t.ID(), time.Since(start).Round(time.Millisecond))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(modelInfo{Name: t.Name(), ID: t.ID(), Incarnation: t.Incarnation(), Epoch: t.Monitor().Epoch(), Gamma: mon.Gamma(), Shape: shape}); err != nil {
		log.Printf("encode response: %v", err)
	}
}

func (d *daemon) handleUnload(w http.ResponseWriter, r *http.Request) {
	if d.readOnly(w) {
		return
	}
	name := r.PathValue("name")
	if err := d.reg.Unload(r.Context(), name); err != nil {
		status := http.StatusNotFound
		if !errors.Is(err, napmon.ErrTenantNotFound) {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	d.deleteShape(name)
	log.Printf("unloaded tenant %q", name)
	w.WriteHeader(http.StatusNoContent)
}

func (d *daemon) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	t := d.acquire(w, r.PathValue("name"))
	if t == nil {
		return
	}
	defer t.Release()
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := t.Snapshot(w); err != nil {
		// Headers are gone; all we can do is log and cut the stream so
		// the client sees a truncated (checksum-failing) snapshot.
		log.Printf("snapshot %q: %v", t.Name(), err)
	}
}

func (d *daemon) handleDeltas(w http.ResponseWriter, r *http.Request) {
	t := d.acquire(w, r.PathValue("name"))
	if t == nil {
		return
	}
	defer t.Release()
	since, err := strconv.ParseUint(r.URL.Query().Get("since"), 10, 64)
	if err != nil {
		http.Error(w, "bad since parameter: "+err.Error(), http.StatusBadRequest)
		return
	}
	entries, err := t.DeltasSince(since)
	if err != nil {
		if errors.Is(err, napmon.ErrDeltaGap) {
			// The bounded log no longer reaches back to the follower's
			// epoch: 410 tells it to re-sync from a fresh snapshot.
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	stream, err := napmon.EncodeDeltaStream(len(t.Monitor().Neurons()), entries)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(stream)
}

func (d *daemon) handleModel(w http.ResponseWriter, r *http.Request) {
	t := d.acquire(w, r.PathValue("name"))
	if t == nil {
		return
	}
	defer t.Release()
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := t.Network().Save(w); err != nil {
		log.Printf("model %q: %v", t.Name(), err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}
