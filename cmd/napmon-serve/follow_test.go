package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// hangingLeader is the regression fixture for the zero-value-client
// bug: it accepts every connection and never writes a response (or,
// with headers=true, writes headers and then hangs mid-body — the case
// Client.Timeout alone would also need to cover). Close releases every
// parked handler.
type hangingLeader struct {
	srv     *httptest.Server
	release chan struct{}
	once    sync.Once
}

func newHangingLeader(headers bool) *hangingLeader {
	h := &hangingLeader{release: make(chan struct{})}
	h.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if headers {
			w.WriteHeader(http.StatusOK)
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
		}
		<-h.release
	}))
	return h
}

func (h *hangingLeader) Close() {
	h.once.Do(func() { close(h.release) })
	h.srv.Close()
}

// TestFollowerTimeoutDerivedFromPoll pins the deadline policy: a
// multiple of the poll interval with a floor generous enough for
// snapshot fetches, applied to both the per-request context and the
// http.Client (which must no longer be the zero value).
func TestFollowerTimeoutDerivedFromPoll(t *testing.T) {
	f := newFollower(&daemon{}, "http://127.0.0.1:1", 200*time.Millisecond)
	if f.timeout != 5*time.Second {
		t.Fatalf("poll 200ms derived timeout %v, want the 5s floor", f.timeout)
	}
	if f.client.Timeout != f.timeout {
		t.Fatalf("client timeout %v does not match follower timeout %v", f.client.Timeout, f.timeout)
	}
	f = newFollower(&daemon{}, "http://127.0.0.1:1", 2*time.Second)
	if f.timeout != 20*time.Second {
		t.Fatalf("poll 2s derived timeout %v, want 10x the poll", f.timeout)
	}
}

// TestFollowerGetTimesOutOnHungLeader is the regression test for the
// zero-value http.Client: a leader socket that accepts and then never
// responds must fail the request within the derived deadline instead
// of stalling the replication loop forever. Both hang modes are
// covered — before any response bytes, and mid-body after headers.
func TestFollowerGetTimesOutOnHungLeader(t *testing.T) {
	for _, headers := range []bool{false, true} {
		leader := newHangingLeader(headers)
		f := newFollower(&daemon{}, leader.srv.URL, 10*time.Millisecond)
		f.timeout = 200 * time.Millisecond // keep the test fast
		f.client.Timeout = f.timeout
		start := time.Now()
		_, err := f.get(context.Background(), "/v1/models")
		elapsed := time.Since(start)
		leader.Close()
		if err == nil {
			t.Fatalf("headers=%v: request against a hung leader returned no error", headers)
		}
		if elapsed > 5*time.Second {
			t.Fatalf("headers=%v: hung request took %v to fail, deadline was %v", headers, elapsed, f.timeout)
		}
	}
}

// TestFollowerBootstrapFailsOnHungLeader drives the original symptom
// end to end: bootstrap against a never-responding leader used to block
// forever before the daemon's listener ever opened; now it returns an
// error once the deadline fires.
func TestFollowerBootstrapFailsOnHungLeader(t *testing.T) {
	leader := newHangingLeader(false)
	defer leader.Close()
	f := newFollower(&daemon{}, leader.srv.URL, 10*time.Millisecond)
	f.timeout = 200 * time.Millisecond
	f.client.Timeout = f.timeout
	done := make(chan error, 1)
	go func() { done <- f.bootstrap(context.Background()) }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("bootstrap against a hung leader returned no error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("bootstrap still blocked on a hung leader after 10s")
	}
}

// TestFollowerGetHonorsContextCancel checks the snapshot/delta fetch
// paths abort promptly on ctx cancellation (the SIGTERM path), without
// waiting out the request deadline.
func TestFollowerGetHonorsContextCancel(t *testing.T) {
	leader := newHangingLeader(false)
	defer leader.Close()
	f := newFollower(&daemon{}, leader.srv.URL, 10*time.Millisecond)
	f.timeout = time.Hour // cancellation, not the deadline, must fire
	f.client.Timeout = f.timeout
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := f.get(ctx, "/v1/models/default/snapshot")
	if err == nil {
		t.Fatal("cancelled request returned no error")
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("cancelled request failed with %v, want a context cancellation", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled request took %v to abort", elapsed)
	}
}
