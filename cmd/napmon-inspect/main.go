// Command napmon-inspect prints the contents of saved model and monitor
// files: architectures, parameter counts, per-class comfort-zone sizes
// (pattern counts and BDD node counts), and optionally a Graphviz DOT
// rendering of one class's zone.
//
// Usage:
//
//	napmon-inspect -model net.model
//	napmon-inspect -monitor stop.monitor [-dot 14 > zone14.dot]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"napmon/internal/core"
	"napmon/internal/nn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("napmon-inspect: ")
	modelPath := flag.String("model", "", "model file to inspect")
	monitorPath := flag.String("monitor", "", "monitor file to inspect")
	dotClass := flag.Int("dot", -1, "write the DOT rendering of this class's zone to stdout")
	flag.Parse()

	if *modelPath == "" && *monitorPath == "" {
		log.Fatal("nothing to inspect; pass -model and/or -monitor")
	}
	if *modelPath != "" {
		inspectModel(*modelPath)
	}
	if *monitorPath != "" {
		inspectMonitor(*monitorPath, *dotClass)
	}
}

func inspectModel(path string) {
	net, err := nn.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s\n  architecture: %v\n", path, net)
	totalParams := 0
	for _, p := range net.Params() {
		fmt.Printf("  %-16s %v (%d values)\n", p.Name, p.Value.Shape(), p.Value.Len())
		totalParams += p.Value.Len()
	}
	fmt.Printf("  total learnable parameters: %d\n", totalParams)
}

func inspectMonitor(path string, dotClass int) {
	mon, err := core.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	cfg := mon.Config()
	fmt.Printf("monitor %s\n  layer %d, gamma %d, %d/%d neurons monitored\n",
		path, cfg.Layer, mon.Gamma(), len(mon.Neurons()), mon.LayerWidth())
	fmt.Printf("  monitored neurons: %v\n", mon.Neurons())
	fmt.Println("  class  inserted  patterns(at gamma)  bdd-nodes")
	for _, c := range mon.Classes() {
		z := mon.Zone(c)
		fmt.Printf("  %5d  %8d  %18.0f  %9d\n",
			c, z.InsertCount(), z.PatternCount(), z.NodeCount())
	}
	fmt.Printf("  total BDD nodes: %d\n", mon.StorageNodes())

	if dotClass >= 0 {
		z := mon.Zone(dotClass)
		if z == nil {
			log.Fatalf("class %d is not monitored", dotClass)
		}
		fmt.Fprintln(os.Stderr, "writing DOT to stdout")
		fmt.Print(z.Manager().Dot(z.Root(), fmt.Sprintf("zone_%d", dotClass)))
	}
}
