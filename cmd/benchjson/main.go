// Command benchjson turns `go test -bench` output into a machine-readable
// JSON artifact and gates benchmark regressions against a committed
// baseline. It is the engine of the bench-regression CI job:
//
//	go test -bench ... -benchmem . | benchjson -o BENCH_PR3.json
//	benchjson -check -baseline ci/bench-baseline.json -current BENCH_PR3.json \
//	    -watch 'BenchmarkWatchBatch|BenchmarkServe' -max-ratio 1.3
//
// Parse mode reads benchmark lines ("BenchmarkFoo/sub-8  10  123 ns/op
// 45 B/op 2 allocs/op 678 inputs/s") from stdin and records every metric
// pair per benchmark.
//
// Check mode compares the watched benchmarks' ns/op between two such
// files and exits nonzero when any regresses by more than -max-ratio.
// Because a committed baseline is measured on different hardware than
// the CI runner, the comparison is speed-normalized by default: each
// watched benchmark's ratio is divided by the median ns/op ratio across
// the unwatched benchmarks common to both files that also match -ref,
// so a uniformly slower machine does not trip the gate while a real
// regression of the watched hot path still does. Restrict -ref to
// core-count-invariant benchmarks (serial, or GOMAXPROCS-pinned) when
// the files carry parallel-scaling axes — otherwise a multi-core runner
// replaying a 1-core baseline folds genuine parallel speedup into the
// "machine speed" estimate and inflates every watched ratio. Disable
// with -normalize=false when both files come from the same machine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result: the name without the -N
// GOMAXPROCS suffix and every reported metric keyed by unit.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the JSON artifact schema.
type File struct {
	GeneratedBy string      `json:"generated_by"`
	Note        string      `json:"note,omitempty"`
	Benchmarks  []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		out      = flag.String("o", "", "parse mode: write JSON here (default stdout)")
		note     = flag.String("note", "", "parse mode: free-form note stored in the artifact")
		check    = flag.Bool("check", false, "check mode: compare -current against -baseline")
		baseline = flag.String("baseline", "", "check mode: baseline JSON file")
		current  = flag.String("current", "", "check mode: current JSON file")
		watch    = flag.String("watch", ".", "check mode: regexp of benchmark names to gate")
		ref      = flag.String("ref", ".", "check mode: regexp of benchmark names usable as machine-speed references (watched names are always excluded); restrict this to core-count-invariant benchmarks when the files contain parallel-scaling axes")
		maxRatio = flag.Float64("max-ratio", 1.3, "check mode: fail when ns/op ratio exceeds this")
		norm     = flag.Bool("normalize", true, "check mode: divide ratios by the cross-file median (machine-speed correction)")
	)
	flag.Parse()
	if *check {
		if err := runCheck(*baseline, *current, *watch, *ref, *maxRatio, *norm); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := runParse(os.Stdin, *out, *note); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// benchLine matches "BenchmarkName-8   	    10	  123456 ns/op	..." and
// captures the name (with sub-benchmark path), iteration count and the
// metric tail.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// runParse reads go test -bench output and writes the JSON artifact.
// Non-benchmark lines (goos, pkg, PASS, test log output) pass through to
// stderr so the human-readable stream stays visible in CI logs.
func runParse(in *os.File, out, note string) error {
	var f File
	f.GeneratedBy = "cmd/benchjson"
	f.Note = note
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		b := Benchmark{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		f.Benchmarks = append(f.Benchmarks, b)
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

func load(path string) (map[string]Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Benchmark, len(f.Benchmarks))
	for _, b := range f.Benchmarks {
		m[b.Name] = b
	}
	return m, nil
}

// runCheck compares ns/op of the watched benchmarks between baseline and
// current, optionally normalizing by the median ratio across the common
// reference benchmarks, and fails on any regression beyond maxRatio.
func runCheck(basePath, curPath, watch, ref string, maxRatio float64, normalize bool) error {
	if basePath == "" || curPath == "" {
		return fmt.Errorf("check mode needs -baseline and -current")
	}
	re, err := regexp.Compile(watch)
	if err != nil {
		return fmt.Errorf("bad -watch regexp: %w", err)
	}
	refRe, err := regexp.Compile(ref)
	if err != nil {
		return fmt.Errorf("bad -ref regexp: %w", err)
	}
	base, err := load(basePath)
	if err != nil {
		return err
	}
	cur, err := load(curPath)
	if err != nil {
		return err
	}
	// Machine-speed correction: the median ns/op ratio over the
	// reference benchmarks present in both files estimates how much
	// faster or slower this machine is than the baseline's. Watched
	// benchmarks are excluded from the median — otherwise a uniform
	// regression of the gated hot path would normalize itself away and
	// the gate could never fire. The -ref regexp further restricts the
	// reference set: a baseline captured on a 1-core box records
	// parallel-axis benchmarks (workersN, cpuN) flat, and on a
	// multi-core runner those speed up genuinely — feeding that real
	// scaling into the median would inflate every watched ratio, so the
	// caller names core-count-invariant references instead.
	speed := 1.0
	if normalize {
		var ratios []float64
		for name, b := range base {
			c, ok := cur[name]
			if !ok || re.MatchString(name) || !refRe.MatchString(name) ||
				b.Metrics["ns/op"] <= 0 || c.Metrics["ns/op"] <= 0 {
				continue
			}
			ratios = append(ratios, c.Metrics["ns/op"]/b.Metrics["ns/op"])
		}
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			speed = ratios[len(ratios)/2]
			fmt.Printf("machine-speed correction: median ratio %.3f over %d unwatched benchmarks\n", speed, len(ratios))
		} else {
			fmt.Println("machine-speed correction: no unwatched reference benchmarks in common; ratios compared raw")
		}
	}
	var failed []string
	checked := 0
	for name, b := range base {
		if !re.MatchString(name) {
			continue
		}
		c, ok := cur[name]
		if !ok {
			failed = append(failed, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		bn, cn := b.Metrics["ns/op"], c.Metrics["ns/op"]
		if bn <= 0 || cn <= 0 {
			continue
		}
		checked++
		ratio := cn / bn / speed
		status := "ok"
		if ratio > maxRatio {
			status = "REGRESSION"
			failed = append(failed, fmt.Sprintf("%s: %.3gx baseline (limit %.2gx)", name, ratio, maxRatio))
		}
		fmt.Printf("%-60s %12.0f → %12.0f ns/op  %5.2fx  %s\n", name, bn, cn, ratio, status)
	}
	if checked == 0 && len(failed) == 0 {
		return fmt.Errorf("no benchmarks matched -watch %q in %s", watch, basePath)
	}
	if len(failed) > 0 {
		return fmt.Errorf("benchmark regression gate failed:\n  %s", strings.Join(failed, "\n  "))
	}
	fmt.Printf("bench-regression gate passed: %d benchmarks within %.2gx\n", checked, maxRatio)
	return nil
}
