// Command napmon-gateway runs the binary-protocol serving daemon: it
// loads (or self-trains) a model and its activation monitor, starts the
// same micro-batching server as napmon-serve, and exposes it over the
// napmon wire protocol (internal/wire) instead of HTTP/JSON:
//
//   - UDP: one request frame per datagram, one response datagram back.
//     A cheap first-bytes packet filter drops non-protocol traffic
//     before any allocation. Overload sheds explicitly: the daemon
//     answers with an error frame (code 3, overloaded) instead of
//     letting a queue grow without bound.
//   - TCP: length-prefixed frames on persistent connections, pipelined.
//     Overload pushes back through the connection: when the per-conn
//     inflight cap or the server queue fills, the reader stalls and TCP
//     flow control slows the client — no frames are dropped.
//
// The frame catalogue (ping/watch/learn/stats and their responses) and
// the exact byte layout are documented in internal/wire and pinned by
// its TestABI. cmd/napmon-soak is the matching load generator.
//
// Since wire v3 every request frame names a tenant, and the gateway
// routes it through a napmon.Registry by tenant id: each frame pins the
// tenant's lane for its lifetime, so a hot unload can never kill an
// in-flight batch. This daemon loads one model as the default tenant
// (wire id 0), which is the id v2-era clients implicitly speak.
//
// -admin binds an HTTP side listener (disabled by default) serving
// GET /metrics (Prometheus text: serve + monitor + gateway series) and
// GET /healthz; -pprof additionally mounts net/http/pprof there. The
// admin listener is separate from the wire transports so scraping never
// competes with frame traffic and the profiling surface stays off the
// data-plane ports.
//
// On SIGINT/SIGTERM the daemon shuts down gracefully: listeners stop,
// open connections close, and the serving queue drains before exit.
//
// Usage:
//
//	napmon-gateway -selftrain 0.05 [-udp :9710] [-tcp :9711]
//	napmon-gateway -model m.model -monitor m.monitor [-udp :9710] [-tcp :9711]
//	               [-admin :9712] [-pprof]
//	               [-max-batch 64] [-max-delay 2ms] [-queue 1024] [-lanes 1]
//	               [-max-inflight 1024] [-write-queue 256]
//	               [-read-idle 30s] [-write-timeout 10s] [-malformed-budget 8]
//
// Passing an empty -udp or -tcp disables that transport; at least one
// must be enabled.
//
// TCP connections live under per-frame read/write deadlines and a
// malformed-payload budget (see wire.GatewayConfig); reaped connections
// show up in napmon_gateway_conns_reaped_total / _overbudget_total.
// For resilience gates, -chaos-seed wraps the TCP listener in
// internal/chaos seeded fault injection (resets, stalls, corruption,
// partial writes, accept failures; -chaos-faults bounds the budget so
// the schedule drains), and -leak-check verifies at exit that every
// gateway goroutine returned to the pre-listener baseline.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	stdnet "net" // the model variable below shadows the package name
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"napmon"
	"napmon/internal/chaos"
	"napmon/internal/exp"
	"napmon/internal/obs"
	"napmon/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("napmon-gateway: ")
	var (
		udpAddr     = flag.String("udp", "127.0.0.1:9710", "UDP listen address (empty = disable UDP)")
		tcpAddr     = flag.String("tcp", "127.0.0.1:9711", "TCP listen address (empty = disable TCP)")
		adminAddr   = flag.String("admin", "", "HTTP admin listen address for /metrics and /healthz (empty = disabled)")
		pprofFlag   = flag.Bool("pprof", false, "mount net/http/pprof on the -admin listener")
		modelPath   = flag.String("model", "", "trained model file (napmon-train -model)")
		monitorPath = flag.String("monitor", "", "monitor file (napmon-train -monitor)")
		selftrain   = flag.Float64("selftrain", 0, "train in-process at this dataset scale instead of loading files (0 = off)")
		ds          = flag.String("dataset", "mnist", "self-training dataset: mnist or gtsrb")
		seed        = flag.Uint64("seed", 1, "self-training seed")
		gamma       = flag.Int("gamma", 2, "self-trained monitor gamma")
		maxBatch    = flag.Int("max-batch", 0, "micro-batch flush threshold (0 = default)")
		maxDelay    = flag.Duration("max-delay", 0, "partial-batch flush deadline (0 = default)")
		queueDepth  = flag.Int("queue", 0, "request queue depth (0 = default)")
		lanes       = flag.Int("lanes", 0, "serving lanes / network replicas (0 = default)")
		maxInflight = flag.Int("max-inflight", 0, "per-TCP-connection inflight request cap (0 = default)")
		writeQueue  = flag.Int("write-queue", 0, "per-TCP-connection response queue depth (0 = default)")
		drainWait   = flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
		shapeFlag   = flag.String("shape", "", "expected input tensor shape, e.g. 1,28,28 (default: per -dataset)")

		readIdle     = flag.Duration("read-idle", 0, "per-TCP-conn read idle timeout (0 = default 30s, negative = disabled)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-TCP-conn response write timeout (0 = default 10s, negative = disabled)")
		malfBudget   = flag.Int("malformed-budget", 0, "malformed payloads one TCP conn may send before teardown (0 = default 8, negative = disabled)")

		chaosSeed   = flag.Uint64("chaos-seed", 0, "wrap the TCP listener in seeded fault injection (testing; 0 = off)")
		chaosFaults = flag.Int("chaos-faults", 0, "fault budget for -chaos-seed (0 = unbounded)")
		chaosStall  = flag.Duration("chaos-stall", 100*time.Millisecond, "injected stall duration for -chaos-seed")
		leakCheck   = flag.Bool("leak-check", false, "after drain, verify gateway goroutines returned to baseline (exit 1 and dump stacks on leak)")
	)
	flag.Parse()
	if *udpAddr == "" && *tcpAddr == "" {
		log.Fatal("both transports disabled; set -udp and/or -tcp")
	}

	// Goroutine baseline before any listener exists: after the drain,
	// -leak-check compares against this to prove the gateway's reader/
	// writer/responder goroutines all exited.
	baseline := runtime.NumGoroutine()

	shape, err := exp.InputShape(*shapeFlag, *ds)
	if err != nil {
		log.Fatal(err)
	}
	net, mon, err := exp.LoadOrTrain(*modelPath, *monitorPath, *selftrain, *ds, *seed, *gamma, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	if err := exp.ProbeShape(net, shape); err != nil {
		log.Fatal(err)
	}
	// The gateway fronts a fleet registry: frames carry a tenant id (v3)
	// and are routed to that tenant's serving lane. A single -model /
	// -selftrain invocation loads the default tenant under wire id 0, so
	// v2-era clients that never learned about tenants keep working.
	reg := napmon.NewRegistry(napmon.RegistryConfig{Grace: *drainWait})
	tenant, err := reg.Load(napmon.DefaultTenant, napmon.TenantConfig{
		Net: net, Mon: mon,
		Serve: napmon.ServerConfig{
			MaxBatch:   *maxBatch,
			MaxDelay:   *maxDelay,
			QueueDepth: *queueDepth,
			Lanes:      *lanes,
			InputShape: shape,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := tenant.Server()

	g := wire.NewFleetGateway(
		func(id uint32) (wire.TenantLane, error) { return reg.AcquireID(id) },
		reg.Len,
		wire.GatewayConfig{
			MaxInflight:     *maxInflight,
			WriteQueue:      *writeQueue,
			ReadIdleTimeout: *readIdle,
			WriteTimeout:    *writeTimeout,
			MalformedBudget: *malfBudget,
		})
	if *udpAddr != "" {
		if err := g.ListenUDP(*udpAddr); err != nil {
			log.Fatal(err)
		}
		log.Printf("udp on %s (wire protocol v%d)", g.UDPAddr(), wire.Version)
	}
	if *tcpAddr != "" {
		ln, err := stdnet.Listen("tcp", *tcpAddr)
		if err != nil {
			log.Fatal(err)
		}
		if *chaosSeed != 0 {
			// Every accepted conn (and the accept path itself) rides the
			// seeded fault schedule: resets, stalls, corruption, partial
			// writes, transient accept failures. Same seed, same faults —
			// a red chaos gate is replayable byte for byte.
			plan := chaos.NewSchedule(*chaosSeed, chaos.Rates{
				Reset:        0.02,
				ReadStall:    0.02,
				Corrupt:      0.02,
				WriteStall:   0.02,
				PartialWrite: 0.02,
				AcceptFail:   0.10,
				StallFor:     *chaosStall,
				MaxFaults:    *chaosFaults,
			})
			ln = chaos.WrapListener(ln, plan, nil)
			log.Printf("chaos listener armed (seed %d, budget %d, stall %v)", *chaosSeed, *chaosFaults, *chaosStall)
		}
		if err := g.ServeTCP(ln); err != nil {
			log.Fatal(err)
		}
		log.Printf("tcp on %s (wire protocol v%d)", g.TCPAddr(), wire.Version)
	}

	var adminSrv *http.Server
	if *adminAddr != "" {
		obsReg := obs.NewRegistry()
		srv.RegisterMetrics(obsReg)
		reg.RegisterMetrics(obsReg)
		g.RegisterMetrics(obsReg)
		mux := http.NewServeMux()
		mux.Handle("/metrics", obsReg.Handler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		if *pprofFlag {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		adminSrv = &http.Server{
			Addr:              *adminAddr,
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := adminSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("admin listener: %v", err)
			}
		}()
		log.Printf("admin on http://%s (GET /metrics, GET /healthz)", *adminAddr)
	} else if *pprofFlag {
		log.Fatal("-pprof requires -admin")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	// Release the signal registration now: a second SIGINT/SIGTERM during
	// a stuck drain falls back to default handling and kills the process.
	stop()
	log.Printf("signal received, draining (budget %v)...", *drainWait)
	// Order matters: close the gateway first so no new frames reach the
	// server, then drain the serving queue.
	if err := g.Close(); err != nil {
		log.Printf("gateway close: %v", err)
	}
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if adminSrv != nil {
		if err := adminSrv.Shutdown(dctx); err != nil {
			log.Printf("admin shutdown: %v", err)
		}
	}
	if err := reg.Close(dctx); err != nil {
		log.Printf("registry close: %v", err)
	}
	st := srv.Stats()
	ct := g.Counters()
	log.Printf("drained: %d frames in (%d malformed, %d shed, %d conns reaped, %d over budget), served %d in %d batches, p50 %v, p99 %v",
		ct.Received, ct.Malformed, ct.Dropped, ct.Reaped, ct.OverBudget, st.Served, st.Batches, st.P50, st.P99)
	if *leakCheck {
		checkGoroutines(baseline)
	}
}

// checkGoroutines polls until the goroutine count settles back at (or
// under) the pre-listener baseline, with slack for runtime helpers; a
// count still elevated after the grace window is a leak — dump stacks
// and fail, so the chaos gate catches a reader/writer/responder that
// survived its connection.
func checkGoroutines(baseline int) {
	const slack = 2
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			log.Printf("leak check ok: %d goroutines (baseline %d)", n, baseline)
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			log.Printf("leak check FAILED: %d goroutines, baseline %d+%d\n%s", n, baseline, slack, buf)
			os.Exit(1)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
