// Command napmon-metricslint validates a live /metrics endpoint: it
// fetches the page, runs it through the strict internal exposition
// parser (internal/obs — the same grammar the exposition writer
// emits), asserts that every -require'd series is present, and
// optionally cross-checks core counters against the same daemon's
// /stats JSON. It is the CI metrics-smoke gate (`make metrics-smoke`):
// a daemon that serves an unparseable exposition, silently drops a
// series, or reports different numbers on its two observability
// surfaces exits 1 here.
//
// Usage:
//
//	napmon-metricslint -url http://127.0.0.1:8080/metrics \
//	    [-require napmon_requests_served_total,napmon_oop_total,...] \
//	    [-stats-url http://127.0.0.1:8080/stats]
//
// -require takes a comma-separated list of metric names; a histogram is
// satisfied by its _bucket/_sum/_count series. -stats-url enables the
// cross-check: served/submitted/shed counters and the monitored /
// out-of-pattern tallies must agree between the scrapes. The two
// surfaces are sampled at slightly different instants, so the check
// tolerates forward drift on counters that may tick between the two
// GETs (second sample >= first, within -drift), but not disagreement
// beyond it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"napmon/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("napmon-metricslint: ")
	var (
		url      = flag.String("url", "http://127.0.0.1:8080/metrics", "metrics endpoint to validate")
		require  = flag.String("require", "", "comma-separated metric names that must be present")
		statsURL = flag.String("stats-url", "", "matching /stats endpoint to cross-check counters against (empty = skip)")
		drift    = flag.Uint64("drift", 1024, "allowed forward motion of a counter between the two scrapes")
	)
	flag.Parse()

	exp, raw, err := fetchMetrics(*url)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d samples across %d families from %s\n", len(exp.Samples), len(exp.Types), *url)

	failed := false
	for _, name := range splitList(*require) {
		if !exp.Has(name) {
			log.Printf("FAIL: required series %s absent", name)
			failed = true
		}
	}

	if *statsURL != "" {
		if err := crossCheck(exp, *statsURL, *drift); err != nil {
			log.Printf("FAIL: %v", err)
			failed = true
		} else {
			fmt.Printf("cross-check against %s ok\n", *statsURL)
		}
	}

	if failed {
		os.Stderr.Write(raw)
		os.Exit(1)
	}
	fmt.Println("ok")
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// fetchMetrics GETs and strictly parses one exposition, returning the
// raw page too so failures can show what the daemon actually served.
func fetchMetrics(url string) (*obs.Exposition, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	exp, err := obs.ParseExposition(strings.NewReader(string(raw)))
	if err != nil {
		return nil, raw, fmt.Errorf("exposition invalid: %w", err)
	}
	return exp, raw, nil
}

// statsDoc is the subset of the /stats JSON the cross-check reads.
type statsDoc struct {
	Submitted    uint64 `json:"submitted"`
	Served       uint64 `json:"served"`
	Shed         uint64 `json:"shed"`
	Monitored    uint64 `json:"monitored"`
	OutOfPattern uint64 `json:"out_of_pattern"`
	Epoch        uint64 `json:"epoch"`
}

// crossCheck fetches /stats and holds the exposition's counters to it.
// The metrics scrape happened first, so live traffic may have advanced
// a counter between the two samples — each check therefore requires
// stats >= metrics value, within drift.
func crossCheck(exp *obs.Exposition, statsURL string, drift uint64) error {
	resp, err := http.Get(statsURL)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", statsURL, resp.Status)
	}
	var st statsDoc
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("decode %s: %w", statsURL, err)
	}
	checks := []struct {
		metric string
		summed bool
		stats  uint64
	}{
		{"napmon_requests_submitted_total", false, st.Submitted},
		{"napmon_requests_served_total", false, st.Served},
		{"napmon_requests_shed_total", false, st.Shed},
		{"napmon_watched_total", true, st.Monitored},
		{"napmon_oop_total", true, st.OutOfPattern},
	}
	for _, c := range checks {
		var mv float64
		if c.summed {
			mv, _ = exp.SumAcross(c.metric)
		} else {
			v, ok := exp.Value(c.metric, nil)
			if !ok {
				return fmt.Errorf("%s absent from exposition", c.metric)
			}
			mv = v
		}
		m := uint64(mv)
		if c.stats < m || c.stats-m > drift {
			return fmt.Errorf("%s: metrics say %d, stats say %d (allowed forward drift %d)",
				c.metric, m, c.stats, drift)
		}
	}
	// Epoch is a gauge, not a counter: it may step forward between the
	// scrapes under live /learn traffic, never backward.
	if v, ok := exp.Value("napmon_epoch", nil); ok && st.Epoch < uint64(v) {
		return fmt.Errorf("napmon_epoch went backwards: metrics %v, stats %d", v, st.Epoch)
	}
	return nil
}
