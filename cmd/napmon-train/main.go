// Command napmon-train trains one of the paper's Table I networks on its
// synthetic dataset and writes the model, and optionally the activation
// monitor built from it, to disk. The saved artifacts can be loaded by
// library users via the napmon package.
//
// Usage:
//
//	napmon-train -dataset mnist|gtsrb [-scale 1.0] [-gamma 2]
//	             [-model out.model] [-monitor out.monitor]
package main

import (
	"flag"
	"log"
	"os"

	"napmon/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("napmon-train: ")
	ds := flag.String("dataset", "mnist", "dataset: mnist or gtsrb")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	seed := flag.Uint64("seed", 1, "seed")
	gamma := flag.Int("gamma", 2, "monitor gamma")
	modelPath := flag.String("model", "", "write trained model to this path")
	monitorPath := flag.String("monitor", "", "write activation monitor to this path")
	flag.Parse()

	opts := exp.Options{Scale: *scale, Seed: *seed, Log: os.Stderr}
	var (
		m   *exp.Model
		err error
	)
	switch *ds {
	case "mnist":
		m, err = exp.TrainMNIST(opts)
	case "gtsrb":
		m, err = exp.TrainGTSRB(opts)
	default:
		log.Fatalf("unknown dataset %q (want mnist or gtsrb)", *ds)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s accuracy: train %.2f%%, validation %.2f%%",
		m.Name, 100*m.TrainAcc, 100*m.ValAcc)

	if *modelPath != "" {
		if err := m.Net.SaveFile(*modelPath); err != nil {
			log.Fatal(err)
		}
		log.Printf("model written to %s", *modelPath)
	}
	if *monitorPath != "" {
		rows, mon, err := exp.Table2ForModel(m, []int{*gamma})
		if err != nil {
			log.Fatal(err)
		}
		if err := mon.SaveFile(*monitorPath); err != nil {
			log.Fatal(err)
		}
		log.Printf("monitor (gamma=%d) written to %s; out-of-pattern %.2f%%, precision %.2f%%",
			*gamma, *monitorPath,
			100*rows[0].Metrics.OutOfPatternRate(),
			100*rows[0].Metrics.OutOfPatternPrecision())
	}
}
