// Command napmon-experiment regenerates the paper's evaluation artifacts:
// Table I (architectures and accuracies), Table II (γ-sweeps of the
// activation monitors), the Figure 2 coarseness sweep and the Figure 3
// front-car case study.
//
// Usage:
//
//	napmon-experiment [-scale 1.0] [-seed 1] [-v] [-artifact all|table1|table2|figure2|figure3|online]
//
// A full-scale run (scale 1) takes several minutes on one core; the
// numbers recorded in EXPERIMENTS.md come from that configuration.
//
// -artifact online runs the online-phase experiment (serve-while-
// retraining): the monitor is built from half the training patterns and
// the withheld half is streamed back in through the epoch-swap updater,
// tracing detection-rate drift per published epoch against a one-shot
// full-build reference.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"napmon/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("napmon-experiment: ")
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1 = full run)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	verbose := flag.Bool("v", false, "log training progress")
	artifact := flag.String("artifact", "all", "which artifact to regenerate: all, table1, table2, figure2, figure3")
	flag.Parse()

	opts := exp.Options{Scale: *scale, Seed: *seed}
	if *verbose {
		opts.Log = os.Stderr
	}

	switch *artifact {
	case "all", "table1", "table2", "figure2":
		runTables(opts, *artifact, os.Stdout)
		if *artifact != "all" {
			return
		}
		fallthrough
	case "figure3":
		runFrontCar(opts, os.Stdout)
	case "online":
		runOnline(opts, os.Stdout)
	default:
		log.Fatalf("unknown artifact %q", *artifact)
	}
}

// runOnline runs the online-phase experiment: serve-while-retraining via
// epoch-swap updates of the MNIST monitor.
func runOnline(opts exp.Options, w io.Writer) {
	log.Printf("running online phase (epoch-swap updates, scale %.2f)...", opts.Scale)
	res, err := exp.OnlineStudy(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(w, exp.RenderOnline(res))
}

// runTables trains both Table I networks once and derives the requested
// artifacts from them.
func runTables(opts exp.Options, artifact string, w io.Writer) {
	start := time.Now()
	log.Printf("training network 1 (MNIST-like, scale %.2f)...", opts.Scale)
	m1, err := exp.TrainMNIST(opts)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("training network 2 (GTSRB-like)...")
	m2, err := exp.TrainGTSRB(opts)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("training done in %v", time.Since(start).Round(time.Second))

	if artifact == "all" || artifact == "table1" {
		fmt.Fprintln(w, exp.RenderTable1(exp.Table1Rows(m1, m2)))
	}
	if artifact == "table1" {
		return
	}

	rows1, mon1, err := exp.Table2ForModel(m1, []int{0, 1, 2})
	if err != nil {
		log.Fatal(err)
	}
	rows2, mon2, err := exp.Table2ForModel(m2, []int{0, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	// Assert (not eyeball) that the compiled serving path reproduces the
	// interpreted membership verdicts on every validation input of both
	// monitors before reporting any numbers computed on it.
	for _, v := range []struct {
		m   *exp.Model
		mon *exp.Monitor
	}{{m1, mon1}, {m2, mon2}} {
		n, err := exp.VerifyCompiledServing(v.m, v.mon)
		if err != nil {
			log.Fatalf("compiled/interpreted serving divergence: %v", err)
		}
		log.Printf("network %d: compiled serving path verified against the interpreted BDD walk on %d validation inputs", v.m.ID, n)
	}
	if artifact == "all" || artifact == "table2" {
		fmt.Fprintln(w, exp.RenderTable2(append(rows1, rows2...)))
	}
	if artifact == "table2" {
		return
	}

	pts := exp.Figure2Sweep(m1, mon1, 10)
	fmt.Fprintln(w, exp.RenderFigure2(pts))
}

func runFrontCar(opts exp.Options, w io.Writer) {
	log.Printf("running front-car case study...")
	res, _, err := exp.FrontCarStudy(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(w, exp.RenderFrontCar(res))
}
