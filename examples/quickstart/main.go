// Quickstart: the paper's Figure 1 workflow end to end on a small
// problem — train a classifier, build a neuron activation pattern monitor
// from the training data (Algorithm 1), then watch both familiar and
// out-of-distribution inputs at deployment time.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"napmon"
)

func main() {
	// A 3-class toy problem: points around three centres in 4-D space.
	r := napmon.NewRNG(1)
	centers := [][]float64{
		{2, 0, -2, 0},
		{-2, 2, 0, -1},
		{0, -2, 2, 1},
	}
	gen := func(n int, noise float64) []napmon.Sample {
		samples := make([]napmon.Sample, n)
		for i := range samples {
			label := i % len(centers)
			x := napmon.NewTensor(4)
			for j := range x.Data() {
				x.Data()[j] = centers[label][j] + noise*r.Norm()
			}
			samples[i] = napmon.Sample{Input: x, Label: label}
		}
		return samples
	}
	train := gen(600, 0.5)

	// (a) Train the network. The second ReLU layer (index 3) is the
	// close-to-output layer whose activation pattern the monitor records.
	net, err := napmon.BuildNetwork([]napmon.LayerSpec{
		{Kind: napmon.KindDense, In: 4, Out: 16},
		{Kind: napmon.KindReLU},
		{Kind: napmon.KindDense, In: 16, Out: 12},
		{Kind: napmon.KindReLU}, // monitored layer (index 3)
		{Kind: napmon.KindDense, In: 12, Out: 3},
	}, napmon.NewRNG(2))
	if err != nil {
		log.Fatal(err)
	}
	napmon.Train(net, train, napmon.TrainConfig{Epochs: 15, BatchSize: 16, LR: 0.05, Seed: 3})
	fmt.Printf("training accuracy: %.1f%%\n", 100*napmon.Accuracy(net, train))

	// (b) Create the monitor after training (Figure 1-(a)): feed the
	// training data back through the network and record activation
	// patterns per class in BDDs, enlarged by Hamming distance gamma.
	mon, err := napmon.BuildMonitor(net, train, napmon.Config{Layer: 3, Gamma: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitor built: %d classes, %d monitored neurons, gamma=%d\n",
		len(mon.Classes()), len(mon.Neurons()), mon.Gamma())

	// (c) Deployment (Figure 1-(b)): familiar inputs pass silently...
	inDist := gen(200, 0.5)
	flagged := 0
	for _, s := range inDist {
		if v := mon.Watch(net, s.Input); v.OutOfPattern {
			flagged++
		}
	}
	fmt.Printf("in-distribution inputs flagged: %d/200\n", flagged)

	// ...while inputs far outside the training distribution (the paper's
	// scooter-classified-as-car) trigger out-of-pattern warnings even
	// though the network still confidently assigns them a class.
	outDist := make([]napmon.Sample, 200)
	for i := range outDist {
		x := napmon.NewTensor(4)
		for j := range x.Data() {
			x.Data()[j] = 6 * r.Norm() // nothing like the training blobs
		}
		outDist[i] = napmon.Sample{Input: x}
	}
	flagged = 0
	for _, s := range outDist {
		v := mon.Watch(net, s.Input)
		if v.OutOfPattern {
			flagged++
		}
	}
	fmt.Printf("out-of-distribution inputs flagged: %d/200\n", flagged)
	fmt.Println("an out-of-pattern verdict means: the decision is not supported by prior similarities in training")
}
