// Front-car case study (paper §III, Figure 3): the front-car selection
// unit of a highway pilot takes ego-lane geometry and vehicle bounding
// boxes and selects which detected vehicle is the front car (or "#" for
// none). An activation monitor on the selector's penultimate layer tells
// the sensor-fusion stage when a selection is not supported by training
// data — here demonstrated by moving the vehicle into a construction-zone
// traffic distribution the selector never trained on.
//
// Run with: go run ./examples/frontcar
package main

import (
	"fmt"
	"log"

	"napmon"
	"napmon/internal/frontcar"
	"napmon/internal/rng"
)

func main() {
	fmt.Println("training front-car selector on simulated highway traffic...")
	p, train, err := frontcar.BuildPipeline(frontcar.TrainConfig{
		TrainScenes: 4000, Epochs: 25, Gamma: 1, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selector training accuracy: %.1f%%\n",
		100*napmon.Accuracy(p.Selector, train))

	ordinary := frontcar.Samples(1000, frontcar.DefaultSceneConfig(), 50)
	shifted := frontcar.Samples(1000, frontcar.ShiftedSceneConfig(), 51)

	in := napmon.EvaluateMonitor(p.Selector, p.Monitor, ordinary)
	out := napmon.EvaluateMonitor(p.Selector, p.Monitor, shifted)
	fmt.Printf("ordinary traffic:  monitor fires on %.1f%% of scenes\n", 100*in.OutOfPatternRate())
	fmt.Printf("shifted traffic:   monitor fires on %.1f%% of scenes\n", 100*out.OutOfPatternRate())
	fmt.Println("\nfrequent out-of-pattern warnings signal a data distribution shift —")
	fmt.Println("the deployed network needs an update (paper §I).")

	// Show a handful of individual decisions the way the sensor-fusion
	// stage would consume them.
	fmt.Println("\nsample decisions in the construction zone:")
	r := rng.New(99)
	for i := 0; i < 5; i++ {
		scene := frontcar.GenScene(frontcar.ShiftedSceneConfig(), r)
		v := p.Decide(&scene)
		choice := fmt.Sprintf("front car = vehicle %d", v.Class)
		if v.Class == frontcar.NoFrontCar {
			choice = `front car = "#" (none)`
		}
		trust := "trusted"
		if v.OutOfPattern {
			trust = "NOT SUPPORTED BY TRAINING - lower fusion weight"
		}
		fmt.Printf("  scene %d (%d vehicles): %s [%s]\n", i, len(scene.Vehicles), choice, trust)
	}
}
