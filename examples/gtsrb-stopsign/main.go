// Stop-sign monitor: reproduces the configuration of the paper's network 2
// experiment at reduced scale — train a CNN on the 43-class GTSRB-like
// dataset, monitor only the stop-sign class (c = 14) over the 25% most
// decision-relevant neurons of the ReLU(fc(84)) layer (gradient-based
// selection), and sweep the Hamming enlargement γ to pick the coarseness
// of abstraction on the validation set.
//
// Run with: go run ./examples/gtsrb-stopsign   (takes a few minutes)
package main

import (
	"fmt"
	"log"
	"os"

	"napmon"
)

func main() {
	fmt.Println("generating GTSRB-like dataset (43 classes)...")
	ds := napmon.GTSRBLike(2150, 1075, 7)

	// The paper's network 2: ReLU(BN(Conv(40))), MaxPool,
	// ReLU(BN(Conv(20))), MaxPool, ReLU(fc(240)), ReLU(fc(84)), fc(43).
	specs := []napmon.LayerSpec{
		{Kind: napmon.KindConv, Out: 40, InC: 3, KH: 5, KW: 5, Stride: 1},
		{Kind: napmon.KindBN, Ch: 40},
		{Kind: napmon.KindReLU},
		{Kind: napmon.KindMaxPool, Size: 2},
		{Kind: napmon.KindConv, Out: 20, InC: 40, KH: 5, KW: 5, Stride: 1},
		{Kind: napmon.KindBN, Ch: 20},
		{Kind: napmon.KindReLU},
		{Kind: napmon.KindMaxPool, Size: 2},
		{Kind: napmon.KindFlatten},
		{Kind: napmon.KindDense, In: 500, Out: 240},
		{Kind: napmon.KindReLU},
		{Kind: napmon.KindDense, In: 240, Out: 84},
		{Kind: napmon.KindReLU}, // monitored layer, index 12
		{Kind: napmon.KindDense, In: 84, Out: 43},
	}
	const monitoredLayer = 12
	net, err := napmon.BuildNetwork(specs, napmon.NewRNG(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training network 2 (reduced scale)...")
	napmon.Train(net, ds.Train, napmon.TrainConfig{
		Epochs: 5, BatchSize: 32, LR: 0.015, LRDecay: 0.85, Seed: 9, Log: os.Stderr,
	})
	fmt.Printf("accuracy: train %.2f%%, validation %.2f%%\n",
		100*napmon.Accuracy(net, ds.Train), 100*napmon.Accuracy(net, ds.Val))

	// Select the top 25% of the 84 monitored-layer neurons by their
	// influence on the stop-sign logit. Samples of the stop-sign class
	// drive the gradient-based sensitivity analysis.
	var stopSamples []napmon.Sample
	for _, s := range ds.Train {
		if s.Label == napmon.StopSignClass {
			stopSamples = append(stopSamples, s)
		}
	}
	neurons, err := napmon.SelectNeuronsForClass(
		net, stopSamples[:min(20, len(stopSamples))], monitoredLayer, napmon.StopSignClass, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitoring %d of 84 neurons: %v\n", len(neurons), neurons)

	mon, err := napmon.BuildMonitor(net, ds.Train, napmon.Config{
		Layer:   monitoredLayer,
		Classes: []int{napmon.StopSignClass},
		Neurons: neurons,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Sweep gamma as the paper's Table II does for network 2.
	gammas := []int{0, 1, 2, 3}
	metrics := napmon.GammaSweep(net, mon, ds.Val, gammas)
	fmt.Println("\ngamma  out-of-pattern/watched  misclassified|out-of-pattern")
	for i, m := range metrics {
		fmt.Printf("%5d  %21.2f%%  %27.2f%%\n",
			gammas[i], 100*m.OutOfPatternRate(), 100*m.OutOfPatternPrecision())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
