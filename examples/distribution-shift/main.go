// Distribution shift detection (paper §I motivation): a monitor that is
// largely silent on in-distribution data fires frequently when the input
// distribution drifts — noise, occlusion, darkness, inversion — providing
// the development team an indicator that the deployed network needs an
// update. This example trains a digit classifier, builds its monitor, and
// compares out-of-pattern rates across shifts, including letter-like
// shapes from entirely outside the label space.
//
// Run with: go run ./examples/distribution-shift   (takes a few minutes)
package main

import (
	"fmt"
	"log"
	"os"

	"napmon"
	"napmon/internal/dataset"
)

func main() {
	fmt.Println("generating MNIST-like dataset...")
	ds := napmon.MNISTLike(2000, 1000, 42)

	// A compact CNN (smaller than Table I's network 1, for speed); the
	// final hidden ReLU layer is monitored.
	specs := []napmon.LayerSpec{
		{Kind: napmon.KindConv, Out: 12, InC: 1, KH: 5, KW: 5, Stride: 1},
		{Kind: napmon.KindReLU},
		{Kind: napmon.KindMaxPool, Size: 2},
		{Kind: napmon.KindFlatten},
		{Kind: napmon.KindDense, In: 12 * 12 * 12, Out: 48},
		{Kind: napmon.KindReLU},
		{Kind: napmon.KindDense, In: 48, Out: 32},
		{Kind: napmon.KindReLU}, // monitored layer, index 7
		{Kind: napmon.KindDense, In: 32, Out: 10},
	}
	const monitoredLayer = 7
	net, err := napmon.BuildNetwork(specs, napmon.NewRNG(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training...")
	napmon.Train(net, ds.Train, napmon.TrainConfig{
		Epochs: 4, BatchSize: 32, LR: 0.02, LRDecay: 0.9, Seed: 2, Log: os.Stderr,
	})
	fmt.Printf("validation accuracy: %.2f%%\n", 100*napmon.Accuracy(net, ds.Val))

	mon, err := napmon.BuildMonitor(net, ds.Train, napmon.Config{Layer: monitoredLayer, Gamma: 1})
	if err != nil {
		log.Fatal(err)
	}

	report := func(name string, samples []napmon.Sample) {
		m := napmon.EvaluateMonitor(net, mon, samples)
		fmt.Printf("%-22s out-of-pattern %6.2f%%\n", name, 100*m.OutOfPatternRate())
	}
	fmt.Println("\nmonitor firing rate by input distribution (gamma=1):")
	report("validation (in-dist)", ds.Val)
	for _, kind := range dataset.AllShifts() {
		report("shift: "+string(kind), dataset.ApplyShift(ds.Val, kind, 3))
	}
	report("novel letter shapes", dataset.NovelDigits(500, 4))
}
