// Grid detection monitoring (paper §V, extension 1): the monitor applies
// to object-detection networks that partition an image into a grid whose
// cells offer object proposals (YOLO-style). This example trains a shared
// per-cell proposal network on synthetic scenes, monitors its penultimate
// layer, and shows per-cell out-of-pattern warnings when scenes contain a
// shape class the detector never trained on.
//
// Run with: go run ./examples/griddetect
package main

import (
	"fmt"
	"log"

	"napmon/internal/objdet"
)

func main() {
	fmt.Println("training grid detector on synthetic scenes...")
	det, _, err := objdet.BuildMonitoredDetector(objdet.TrainConfig{
		Scenes: 500, Epochs: 6, Gamma: 1, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	val := objdet.Scenes(100, objdet.DefaultSceneConfig(), 50)
	in := det.Evaluate(val)
	fmt.Printf("validation: cell accuracy %.1f%%, object cells flagged %.1f%%\n",
		100*in.CellAccuracy(), 100*in.ObjectFlagRate())

	shifted := objdet.ShiftedScenes(100, objdet.DefaultSceneConfig(), 51)
	out := det.Evaluate(shifted)
	fmt.Printf("novel-shape scenes: object cells flagged %.1f%%\n",
		100*out.ObjectFlagRate())

	// Render one shifted scene's detections as a grid.
	fmt.Println("\nper-cell proposals on one novel-shape scene ('!' = out of pattern):")
	s := &shifted[0]
	dets := det.Detect(s)
	names := []string{".", "sq", "cr", "di", "tr"}
	for row := 0; row < objdet.GridSize; row++ {
		for col := 0; col < objdet.GridSize; col++ {
			d := dets[row*objdet.GridSize+col]
			mark := " "
			if d.OutOfPattern {
				mark = "!"
			}
			fmt.Printf("  %3s%s", names[d.Class], mark)
		}
		fmt.Println()
	}
	fmt.Println("\nflagged cells carry proposals not supported by training data —")
	fmt.Println("downstream fusion should not trust them.")
}
