# Local invocations mirror .github/workflows/ci.yml exactly: CI calls these
# same targets, so a green `make ci` locally means a green pipeline. CI
# gates every PR on: gofmt, vet + staticcheck (lint), build, race tests and
# a benchmark smoke run across a Go version matrix, plus a bench-regression
# job (bench-json + bench-check against ci/bench-baseline.json), a
# fuzz-smoke job (test-fuzz), a coverage gate (cover-check against
# ci/coverage-baseline.txt), a serve-demo end-to-end daemon smoke job, a
# metrics-smoke observability gate (/metrics exposition validated and
# cross-checked against /stats), a soak-smoke wire-protocol gate
# (strict zero-loss UDP+TCP soak with server-vs-client accounting), a
# fleet-smoke replication gate (leader with two self-trained tenants,
# snapshot-bootstrapped follower, streamed learn deltas, epoch-equality
# convergence with per-tenant metrics asserted on both daemons) and a
# chaos-smoke resilience gate (seeded fault injection against the TCP
# gateway and the replication follower; see the chaos-smoke target).

GO ?= go

.PHONY: build test race test-fuzz cover cover-check bench bench-serve bench-json bench-check serve-demo soak-smoke metrics-smoke fleet-smoke chaos-smoke fmt vet lint ci clean

## build: compile every package
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: run the full test suite under the race detector (guards the
## monitor's freeze-then-serve concurrency model and the shared-network
## ForwardBatch path). Race instrumentation slows the
## experiment-reproduction tests ~10x, hence the long timeout.
race:
	$(GO) test -race -timeout 45m ./...

## test-fuzz: smoke-run the fuzz targets (differential BDD fuzzer against
## a truth-table oracle; pattern wire-format round trip; binary protocol
## frame round trip + arbitrary-bytes decoder safety). Each target gets
## a short budget — CI runs this on every PR; leave a fuzzer running with
## a long -fuzztime to actually hunt.
FUZZTIME ?= 15s
test-fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzBDDOps$$' -fuzztime $(FUZZTIME) ./internal/bdd
	$(GO) test -run '^$$' -fuzz '^FuzzPatternRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzWireRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/wire

## cover: run the full test suite with coverage and print the total
COVER_PROFILE ?= coverage.out
cover:
	$(GO) test -coverprofile=$(COVER_PROFILE) -covermode=atomic ./...
	$(GO) tool cover -func=$(COVER_PROFILE) | tail -1

## cover-check: fail if total statement coverage drops below the recorded
## baseline in ci/coverage-baseline.txt (a single number, in percent; the
## baseline carries a little slack below the measured total so unrelated
## PRs don't flake, while a real test-coverage regression still fails)
cover-check: cover
	@total=$$($(GO) tool cover -func=$(COVER_PROFILE) | tail -1 | grep -o '[0-9.]*%' | tr -d '%'); \
	floor=$$(cat ci/coverage-baseline.txt); \
	echo "total coverage $$total% (baseline floor $$floor%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit (t+0 >= f+0) ? 0 : 1 }' || { \
		echo "coverage $$total% fell below the recorded baseline $$floor%"; exit 1; }

## bench: smoke-run every benchmark once, with -benchmem so allocation
## counts are tracked (the batched inference path is expected to be
## allocation-free after warm-up; use `go test -bench=. -benchtime=2s .`
## for real numbers)
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem ./...

## bench-serve: smoke-run the serving benchmarks on their own (batched
## GEMM inference via BenchmarkForwardBatch, raw WatchBatch, and the
## napmon.Serve queue/coalescer/lane pipeline)
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServe|BenchmarkWatchBatch|BenchmarkForwardBatch' -benchtime=1x -benchmem .

## bench-json: run the serving benchmarks for real (multiple iterations)
## and record them as BENCH_PR9.json via cmd/benchjson — the artifact the
## bench-regression CI job uploads and gates on. BenchmarkWatchBatch's
## workers1/2/4 sub-benchmarks and BenchmarkMonitorBuildParallel's
## cpu1/cpu4 pin GOMAXPROCS internally — the -cpu axis with names that
## stay stable across machines of different core counts.
BENCH_JSON ?= BENCH_PR9.json
bench-json:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run '^$$' -bench 'BenchmarkServe|BenchmarkWatchBatch|BenchmarkForwardBatch|BenchmarkZoneBuild|BenchmarkUpdateSwap|BenchmarkZoneQueryCompiled|BenchmarkZoneQueryBitSliced|BenchmarkMonitorBuildParallel|BenchmarkWireEncode|BenchmarkGatewayRoundTrip|BenchmarkSnapshotRoundTrip|BenchmarkRegistryLookup' -benchtime=2x -benchmem . \
		| bin/benchjson -o $(BENCH_JSON)

## bench-check: fail if the serving/update/build hot paths (WatchBatch,
## Serve + ServeWhileUpdating, ForwardBatch, UpdateSwap, the compiled
## zone query, the bit-sliced zone query, the sharded monitor build, the wire codecs, the TCP
## gateway round trip, the snapshot codec and the registry tenant
## lookup) regressed more than 1.3x
## against the committed baseline (machine-speed-normalized; see
## cmd/benchjson). Only the single-core entries of the parallel axes are
## gated (workers1, cpu1): the other widths exist to show scaling on
## multi-core runners and are scheduler-noise-dominated on 1-core hosts.
## For the same reason the speed-normalization reference is pinned to
## the serial BenchmarkZoneBuild — on a multi-core runner the parallel
## axes speed up for real, which must not be mistaken for machine speed.
bench-check:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	bin/benchjson -check -baseline ci/bench-baseline.json -current $(BENCH_JSON) \
		-watch 'BenchmarkWatchBatch/workers1|BenchmarkServe|BenchmarkForwardBatch|BenchmarkUpdateSwap|BenchmarkZoneQueryCompiled|BenchmarkZoneQueryBitSliced|BenchmarkMonitorBuildParallel/cpu1|BenchmarkWireEncode|BenchmarkGatewayRoundTrip|BenchmarkSnapshotRoundTrip|BenchmarkRegistryLookup' \
		-ref 'BenchmarkZoneBuild$$' -max-ratio 1.3

## serve-demo: start napmon-serve against a tiny self-trained model,
## probe /healthz, POST one watch request through the /v1 tenant route
## and one through the legacy /watch alias, read /v1 stats, and shut
## the daemon down gracefully with SIGTERM (CI runs this as the
## end-to-end daemon smoke job)
SERVE_DEMO_ADDR ?= 127.0.0.1:8841
serve-demo:
	$(GO) build -o bin/napmon-serve ./cmd/napmon-serve
	@set -e; \
	bin/napmon-serve -selftrain 0.05 -addr $(SERVE_DEMO_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 150); do \
		curl -sf http://$(SERVE_DEMO_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	curl -sf http://$(SERVE_DEMO_ADDR)/healthz; \
	awk 'BEGIN{printf "{\"shape\":[1,28,28],\"input\":["; for(i=0;i<784;i++) printf "%s0.1",(i?",":""); print "]}"}' \
		| curl -sf -X POST --data-binary @- http://$(SERVE_DEMO_ADDR)/v1/models/default/watch; \
	awk 'BEGIN{printf "{\"shape\":[1,28,28],\"input\":["; for(i=0;i<784;i++) printf "%s0.1",(i?",":""); print "]}"}' \
		| curl -sf -X POST --data-binary @- http://$(SERVE_DEMO_ADDR)/watch; \
	curl -sf http://$(SERVE_DEMO_ADDR)/v1/models/default/stats; \
	curl -sf http://$(SERVE_DEMO_ADDR)/v1/models; \
	kill -TERM $$pid; wait $$pid; trap - EXIT

## soak-smoke: start napmon-gateway against a tiny self-trained model and
## drive it with cmd/napmon-soak over BOTH transports (closed loop,
## -strict: a single dropped, malformed or error frame fails the target).
## The gateway's -admin /metrics endpoint is scraped before and after
## each soak so the server-vs-client accounting diff is part of the
## gate: requests the server counts as served must equal the responses
## the soak received. Writes soak-udp.json / soak-tcp.json reports — the
## artifacts the CI soak-smoke job uploads. SOAK_DURATION scales the run
## (CI uses ~10s per transport).
SOAK_UDP ?= 127.0.0.1:9710
SOAK_TCP ?= 127.0.0.1:9711
SOAK_ADMIN ?= 127.0.0.1:9712
SOAK_DURATION ?= 10s
soak-smoke:
	$(GO) build -o bin/napmon-gateway ./cmd/napmon-gateway
	$(GO) build -o bin/napmon-soak ./cmd/napmon-soak
	@set -e; \
	bin/napmon-gateway -selftrain 0.05 -udp $(SOAK_UDP) -tcp $(SOAK_TCP) -admin $(SOAK_ADMIN) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	bin/napmon-soak -addr $(SOAK_UDP) -proto udp -duration $(SOAK_DURATION) -strict -o soak-udp.json -connect-timeout 120s -metrics http://$(SOAK_ADMIN)/metrics; \
	bin/napmon-soak -addr $(SOAK_TCP) -proto tcp -duration $(SOAK_DURATION) -strict -o soak-tcp.json -connect-timeout 120s -metrics http://$(SOAK_ADMIN)/metrics; \
	kill -TERM $$pid; wait $$pid; trap - EXIT

## metrics-smoke: start napmon-serve against a tiny self-trained model,
## drive a few /watch requests, then validate GET /metrics end to end
## with cmd/napmon-metricslint: the exposition must parse under the
## strict internal grammar, carry the core serve/monitor/epoch/BDD
## series, and agree with the /stats JSON on the shared counters. CI
## runs this as the metrics-smoke job.
METRICS_DEMO_ADDR ?= 127.0.0.1:8842
metrics-smoke:
	$(GO) build -o bin/napmon-serve ./cmd/napmon-serve
	$(GO) build -o bin/napmon-metricslint ./cmd/napmon-metricslint
	@set -e; \
	bin/napmon-serve -selftrain 0.05 -addr $(METRICS_DEMO_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 150); do \
		curl -sf http://$(METRICS_DEMO_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	curl -sf http://$(METRICS_DEMO_ADDR)/healthz; \
	for i in 1 2 3 4 5; do \
		awk 'BEGIN{printf "{\"shape\":[1,28,28],\"input\":["; for(i=0;i<784;i++) printf "%s0.1",(i?",":""); print "]}"}' \
			| curl -sf -X POST --data-binary @- http://$(METRICS_DEMO_ADDR)/v1/models/default/watch >/dev/null; \
	done; \
	bin/napmon-metricslint -url http://$(METRICS_DEMO_ADDR)/metrics \
		-stats-url http://$(METRICS_DEMO_ADDR)/v1/models/default/stats \
		-require napmon_requests_submitted_total,napmon_requests_served_total,napmon_stage_duration_seconds,napmon_watched_total,napmon_oop_total,napmon_unmonitored_total,napmon_gamma_level,napmon_epoch,napmon_epoch_swaps_total,napmon_zone_plans_recompiled_total,napmon_bdd_nodes,napmon_bdd_cache_hits_total,napmon_inference_seconds_total,napmon_zone_query_seconds_total,napmon_registry_tenants,napmon_tenant_up,napmon_tenant_served_total; \
	kill -TERM $$pid; wait $$pid; trap - EXIT

## fleet-smoke: end-to-end multi-tenant replication gate. A leader
## napmon-serve self-trains the default tenant, hot-loads a second
## tenant over PUT /v1/models/alpha, and a follower napmon-serve
## -follow bootstraps both tenants from compact snapshots. The smoke
## then streams 20 /learn epoch deltas into the leader's alpha tenant
## and polls until the follower's epoch equals the leader's (the
## replication protocol converges bit-for-bit; epoch equality is the
## observable half, the bit-for-bit half is pinned by the registry and
## core test suites). Finally both daemons' /metrics must expose the
## per-tenant napmon_tenant_* series for every loaded tenant.
FLEET_LEADER ?= 127.0.0.1:8843
FLEET_FOLLOWER ?= 127.0.0.1:8844
fleet-smoke:
	$(GO) build -o bin/napmon-serve ./cmd/napmon-serve
	@set -e; \
	bin/napmon-serve -selftrain 0.03 -addr $(FLEET_LEADER) & lpid=$$!; \
	trap 'kill $$lpid $$fpid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 150); do \
		curl -sf http://$(FLEET_LEADER)/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	curl -sf http://$(FLEET_LEADER)/healthz >/dev/null; \
	echo "fleet-smoke: loading tenant alpha on the leader"; \
	curl -sf -X PUT http://$(FLEET_LEADER)/v1/models/alpha \
		-d '{"selftrain":0.03,"seed":7}' >/dev/null; \
	bin/napmon-serve -follow http://$(FLEET_LEADER) -follow-poll 200ms \
		-addr $(FLEET_FOLLOWER) & fpid=$$!; \
	for i in $$(seq 1 150); do \
		curl -sf http://$(FLEET_FOLLOWER)/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	curl -sf http://$(FLEET_FOLLOWER)/healthz >/dev/null; \
	verdict=$$(awk 'BEGIN{printf "{\"shape\":[1,28,28],\"input\":["; for(i=0;i<784;i++) printf "%s0.1",(i?",":""); print "]}"}' \
		| curl -sf -X POST --data-binary @- http://$(FLEET_LEADER)/v1/models/alpha/watch); \
	pat=$$(echo "$$verdict" | sed -n 's/.*"pattern": "\([01]*\)".*/\1/p'); \
	cls=$$(echo "$$verdict" | sed -n 's/.*"class": \([0-9]*\).*/\1/p'); \
	test -n "$$pat" || { echo "fleet-smoke: no pattern in watch verdict"; exit 1; }; \
	echo "fleet-smoke: streaming 20 learn deltas into alpha (class $$cls)"; \
	for i in $$(seq 1 20); do \
		flip=$$(echo "$$pat" | awk -v i=$$i '{ c=substr($$0,i,1); \
			printf "%s%s%s", substr($$0,1,i-1), (c=="0"?"1":"0"), substr($$0,i+1) }'); \
		curl -sf -X POST http://$(FLEET_LEADER)/v1/models/alpha/learn \
			-d "{\"class\":$$cls,\"patterns\":[\"$$flip\"]}" >/dev/null; \
	done; \
	le=$$(curl -sf http://$(FLEET_LEADER)/v1/models/alpha/stats | sed -n 's/.*"epoch": \([0-9]*\).*/\1/p'); \
	test "$$le" -gt 1 || { echo "fleet-smoke: leader epoch never advanced ($$le)"; exit 1; }; \
	for i in $$(seq 1 100); do \
		fe=$$(curl -sf http://$(FLEET_FOLLOWER)/v1/models/alpha/stats | sed -n 's/.*"epoch": \([0-9]*\).*/\1/p'); \
		test "$$fe" = "$$le" && break; sleep 0.2; \
	done; \
	test "$$fe" = "$$le" || { echo "fleet-smoke: follower epoch $$fe never converged to leader $$le"; exit 1; }; \
	echo "fleet-smoke: follower converged at epoch $$fe"; \
	for host in $(FLEET_LEADER) $(FLEET_FOLLOWER); do \
		m=$$(curl -sf http://$$host/metrics); \
		for tn in default alpha; do \
			echo "$$m" | grep -q "napmon_tenant_up{tenant=\"$$tn\"} 1" \
				|| { echo "fleet-smoke: $$host missing napmon_tenant_up for $$tn"; exit 1; }; \
			echo "$$m" | grep -q "napmon_tenant_epoch{tenant=\"$$tn\"}" \
				|| { echo "fleet-smoke: $$host missing napmon_tenant_epoch for $$tn"; exit 1; }; \
		done; \
	done; \
	echo "fleet-smoke: per-tenant metrics live on leader and follower"; \
	kill -TERM $$fpid; wait $$fpid; \
	kill -TERM $$lpid; wait $$lpid; trap - EXIT

## chaos-smoke: the fault-injection resilience gate, two halves sharing
## one seed (CHAOS_SEED, echoed on failure — replaying with the same
## value reproduces the same fault sequence).
## 1. Gateway half: napmon-gateway serves TCP behind a chaos-wrapped
##    listener (resets, stalls, corruption, partial writes, accept
##    failures; the fault budget is bounded so the schedule drains
##    mid-run) while napmon-soak drives it with -reconnect -chaos-check:
##    the run must produce verdicts, every received response must decode
##    to a valid verdict, the client must never receive more verdicts
##    than the server served, and the daemon's -leak-check must find
##    every gateway goroutine gone after the drain. Writes
##    chaos-soak.json — the artifact the CI chaos-smoke job uploads.
## 2. Follower half: a napmon-serve follower replicates from a live
##    leader through a fault-injected leader client (resets, 5xx bursts,
##    hangs); learn deltas stream into the leader, and once the fault
##    budget drains the follower's exponential-backoff poller must still
##    converge to epoch equality.
CHAOS_SEED ?= 1
CHAOS_TCP ?= 127.0.0.1:9713
CHAOS_ADMIN ?= 127.0.0.1:9714
CHAOS_LEADER ?= 127.0.0.1:8845
CHAOS_FOLLOWER ?= 127.0.0.1:8846
CHAOS_DURATION ?= 10s
chaos-smoke:
	$(GO) build -o bin/napmon-gateway ./cmd/napmon-gateway
	$(GO) build -o bin/napmon-soak ./cmd/napmon-soak
	$(GO) build -o bin/napmon-serve ./cmd/napmon-serve
	@set -e; \
	fail() { echo "chaos-smoke: $$1 (CHAOS_SEED=$(CHAOS_SEED) replays this fault sequence)"; exit 1; }; \
	bin/napmon-gateway -selftrain 0.05 -udp "" -tcp $(CHAOS_TCP) -admin $(CHAOS_ADMIN) \
		-chaos-seed $(CHAOS_SEED) -chaos-faults 40 -leak-check & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	bin/napmon-soak -addr $(CHAOS_TCP) -proto tcp -duration $(CHAOS_DURATION) \
		-reconnect -chaos-check -o chaos-soak.json -connect-timeout 120s \
		-metrics http://$(CHAOS_ADMIN)/metrics \
		|| fail "soak chaos invariants failed"; \
	kill -TERM $$pid; wait $$pid || fail "gateway drain or goroutine leak check failed"; \
	trap - EXIT; \
	bin/napmon-serve -selftrain 0.03 -addr $(CHAOS_LEADER) & lpid=$$!; \
	trap 'kill $$lpid $$fpid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 150); do \
		curl -sf http://$(CHAOS_LEADER)/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	curl -sf http://$(CHAOS_LEADER)/healthz >/dev/null || fail "leader never came up"; \
	bin/napmon-serve -follow http://$(CHAOS_LEADER) -follow-poll 100ms \
		-follow-chaos-seed $(CHAOS_SEED) -follow-chaos-faults 30 \
		-addr $(CHAOS_FOLLOWER) & fpid=$$!; \
	for i in $$(seq 1 300); do \
		curl -sf http://$(CHAOS_FOLLOWER)/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	curl -sf http://$(CHAOS_FOLLOWER)/healthz >/dev/null \
		|| fail "follower never bootstrapped through the fault schedule"; \
	verdict=$$(awk 'BEGIN{printf "{\"shape\":[1,28,28],\"input\":["; for(i=0;i<784;i++) printf "%s0.1",(i?",":""); print "]}"}' \
		| curl -sf -X POST --data-binary @- http://$(CHAOS_LEADER)/v1/models/default/watch); \
	pat=$$(echo "$$verdict" | sed -n 's/.*"pattern": "\([01]*\)".*/\1/p'); \
	cls=$$(echo "$$verdict" | sed -n 's/.*"class": \([0-9]*\).*/\1/p'); \
	test -n "$$pat" || fail "no pattern in leader watch verdict"; \
	echo "chaos-smoke: streaming 20 learn deltas into the leader (class $$cls)"; \
	for i in $$(seq 1 20); do \
		flip=$$(echo "$$pat" | awk -v i=$$i '{ c=substr($$0,i,1); \
			printf "%s%s%s", substr($$0,1,i-1), (c=="0"?"1":"0"), substr($$0,i+1) }'); \
		curl -sf -X POST http://$(CHAOS_LEADER)/v1/models/default/learn \
			-d "{\"class\":$$cls,\"patterns\":[\"$$flip\"]}" >/dev/null; \
	done; \
	le=$$(curl -sf http://$(CHAOS_LEADER)/v1/models/default/stats | sed -n 's/.*"epoch": \([0-9]*\).*/\1/p'); \
	test "$$le" -gt 1 || fail "leader epoch never advanced ($$le)"; \
	for i in $$(seq 1 200); do \
		fe=$$(curl -sf http://$(CHAOS_FOLLOWER)/v1/models/default/stats | sed -n 's/.*"epoch": \([0-9]*\).*/\1/p'); \
		test "$$fe" = "$$le" && break; sleep 0.2; \
	done; \
	test "$$fe" = "$$le" || fail "follower epoch $$fe never converged to leader $$le"; \
	echo "chaos-smoke: follower converged at epoch $$fe through injected faults"; \
	kill -TERM $$fpid; wait $$fpid; \
	kill -TERM $$lpid; wait $$lpid; trap - EXIT

## fmt: fail if any file needs gofmt
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## vet: static analysis
vet:
	$(GO) vet ./...

## lint: vet plus staticcheck (CI installs staticcheck; locally the step
## is skipped with a notice when the binary is absent, so `make ci` works
## on minimal machines)
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it — 'go install honnef.co/go/tools/cmd/staticcheck@latest')"; \
	fi

## clean: remove local build/test artifacts (compiled test binaries,
## coverage profiles, the bin/ tool directory) — everything .gitignore
## hides from git but that still clutters the working tree
clean:
	rm -f ./*.test ./*.prof ./*.out coverage.out soak-*.json chaos-soak.json
	rm -rf bin

## ci: everything the pipeline's verify job runs, in the same order
ci: fmt lint build race bench
