# Local invocations mirror .github/workflows/ci.yml exactly: CI calls these
# same targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test race bench bench-serve serve-demo fmt vet ci

## build: compile every package
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: run the full test suite under the race detector (guards the
## monitor's freeze-then-serve concurrency model). Race instrumentation
## slows the experiment-reproduction tests ~10x, hence the long timeout.
race:
	$(GO) test -race -timeout 45m ./...

## bench: smoke-run every benchmark once so perf code paths are compiled
## and executed (use `go test -bench=. -benchtime=2s .` for real numbers)
bench:
	$(GO) test -bench=. -benchtime=1x ./...

## bench-serve: smoke-run the streaming-serving benchmark on its own
## (single-stream latency + saturated throughput of the napmon.Serve
## queue/coalescer/lane pipeline, compared against raw WatchBatch)
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkServe|BenchmarkWatchBatch' -benchtime=1x .

## serve-demo: start napmon-serve against a tiny self-trained model,
## probe /healthz, POST one /watch request, read /stats, and shut the
## daemon down gracefully with SIGTERM
SERVE_DEMO_ADDR ?= 127.0.0.1:8841
serve-demo:
	$(GO) build -o bin/napmon-serve ./cmd/napmon-serve
	@set -e; \
	bin/napmon-serve -selftrain 0.05 -addr $(SERVE_DEMO_ADDR) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	for i in $$(seq 1 150); do \
		curl -sf http://$(SERVE_DEMO_ADDR)/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	curl -sf http://$(SERVE_DEMO_ADDR)/healthz; \
	awk 'BEGIN{printf "{\"shape\":[1,28,28],\"input\":["; for(i=0;i<784;i++) printf "%s0.1",(i?",":""); print "]}"}' \
		| curl -sf -X POST --data-binary @- http://$(SERVE_DEMO_ADDR)/watch; \
	curl -sf http://$(SERVE_DEMO_ADDR)/stats; \
	kill -TERM $$pid; wait $$pid; trap - EXIT

## fmt: fail if any file needs gofmt
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## vet: static analysis
vet:
	$(GO) vet ./...

## ci: everything the pipeline runs, in the same order
ci: fmt vet build race bench
