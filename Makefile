# Local invocations mirror .github/workflows/ci.yml exactly: CI calls these
# same targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test race bench fmt vet ci

## build: compile every package
build:
	$(GO) build ./...

## test: run the full test suite
test:
	$(GO) test ./...

## race: run the full test suite under the race detector (guards the
## monitor's freeze-then-serve concurrency model). Race instrumentation
## slows the experiment-reproduction tests ~10x, hence the long timeout.
race:
	$(GO) test -race -timeout 45m ./...

## bench: smoke-run every benchmark once so perf code paths are compiled
## and executed (use `go test -bench=. -benchtime=2s .` for real numbers)
bench:
	$(GO) test -bench=. -benchtime=1x ./...

## fmt: fail if any file needs gofmt
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## vet: static analysis
vet:
	$(GO) vet ./...

## ci: everything the pipeline runs, in the same order
ci: fmt vet build race bench
